package drtm

import (
	"strings"
	"testing"
	"time"
)

// TestOptionsPolicyValidation pins the deprecated-knob migration: the old
// bools map onto ReadPolicy, conflicting combinations are Open errors, and
// an unset policy defaults to PolicyAdaptive.
func TestOptionsPolicyValidation(t *testing.T) {
	norm := func(o Options) (Options, error) {
		o.Nodes, o.WorkersPerNode = 1, 1
		return o.normalize()
	}
	cases := []struct {
		name    string
		in      Options
		want    ReadPolicy
		wantErr string
	}{
		{"default is adaptive", Options{}, PolicyAdaptive, ""},
		{"explicit lease", Options{ReadPolicy: PolicyLease}, PolicyLease, ""},
		{"explicit mvcc", Options{ReadPolicy: PolicyMVCC}, PolicyMVCC, ""},
		{"deprecated SpeculativeReads", Options{SpeculativeReads: true}, PolicySpeculative, ""},
		{"deprecated NoReadLease", Options{NoReadLease: true}, PolicyExclusive, ""},
		{"redundant alias ok", Options{SpeculativeReads: true, ReadPolicy: PolicySpeculative}, PolicySpeculative, ""},
		{"both bools conflict", Options{SpeculativeReads: true, NoReadLease: true}, 0, "conflict"},
		{"bool vs policy conflict", Options{SpeculativeReads: true, ReadPolicy: PolicyLease}, 0, "conflicts with"},
		{"NoReadLease vs policy conflict", Options{NoReadLease: true, ReadPolicy: PolicyAdaptive}, 0, "conflicts with"},
		{"unknown policy", Options{ReadPolicy: ReadPolicy(99)}, 0, "unknown"},
		{"mvcc needs chains", Options{ReadPolicy: PolicyMVCC, MVCCDepth: -1}, 0, "version chains"},
	}
	// Every alias × explicit-policy combination goes through the same rule:
	// the matching policy is redundant-but-legal, any other explicit policy
	// conflicts, and the unset policy resolves to the alias's policy.
	aliases := []struct {
		name   string
		set    func(*Options)
		policy ReadPolicy
	}{
		{"SpeculativeReads", func(o *Options) { o.SpeculativeReads = true }, PolicySpeculative},
		{"NoReadLease", func(o *Options) { o.NoReadLease = true }, PolicyExclusive},
	}
	for _, a := range aliases {
		for _, p := range []ReadPolicy{PolicyAdaptive, PolicyLease,
			PolicySpeculative, PolicyExclusive, PolicyMVCC} {
			in := Options{ReadPolicy: p}
			a.set(&in)
			c := struct {
				name    string
				in      Options
				want    ReadPolicy
				wantErr string
			}{name: a.name + " x " + p.String(), in: in, want: p}
			if p != a.policy {
				c.wantErr = "conflicts with"
			}
			cases = append(cases, c)
		}
	}
	for _, c := range cases {
		got, err := norm(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
			continue
		}
		if got.ReadPolicy != c.want {
			t.Errorf("%s: resolved policy %v, want %v", c.name, got.ReadPolicy, c.want)
		}
	}
}

// TestPolicyOverrideE2E: a per-transaction ExecWith/ExecROWith override
// forces the spec arm on a lease-policy deployment, end to end.
func TestPolicyOverrideE2E(t *testing.T) {
	db := MustOpen(Options{Nodes: 2, WorkersPerNode: 1, ReadPolicy: PolicyLease},
		func(table int, key uint64) int { return int(key) % 2 })
	defer db.Close()
	db.CreateHashTable(tblAcct, 1024, 1)
	for k := uint64(1); k <= 8; k++ {
		if err := db.Load(tblAcct, k, []uint64{100}); err != nil {
			t.Fatal(err)
		}
	}

	// Forced spec arm: the remote read must cost no lease.
	if err := db.ExecWith(0, 0, PolicySpeculative, func(tx *Tx) error {
		if err := tx.R(tblAcct, 1); err != nil { // key 1 → node 1: remote
			return err
		}
		return tx.Execute(func(lc *Local) error {
			_, err := lc.Read(tblAcct, 1)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.SpecReads != 1 {
		t.Fatalf("SpecReads = %d, want 1", s.SpecReads)
	}
	if s.LeaseGrants+s.LeaseShares != 0 {
		t.Fatalf("override transaction took %d leases, want 0", s.LeaseGrants+s.LeaseShares)
	}

	// A read-only scan forcing spec: still no lease CAS.
	if err := db.ExecROWith(0, 0, PolicySpeculative, func(ro *RO) error {
		for k := uint64(1); k <= 7; k += 2 { // odd keys → node 1: remote
			if _, err := ro.Read(tblAcct, k); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s = db.Stats()
	if s.SpecReads != 5 {
		t.Fatalf("SpecReads after RO scan = %d, want 5", s.SpecReads)
	}
	if s.LeaseGrants+s.LeaseShares != 0 {
		t.Fatalf("RO override took %d leases, want 0", s.LeaseGrants+s.LeaseShares)
	}

	// The deployment's lease policy is untouched: a plain Exec leases.
	if err := db.Executor(0, 0).Exec(func(tx *Tx) error {
		if err := tx.R(tblAcct, 3); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			_, err := lc.Read(tblAcct, 3)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	s = db.Stats()
	if s.LeaseGrants+s.LeaseShares == 0 {
		t.Fatal("runtime-wide lease policy lost after overrides")
	}
	if s.SpecReads != 5 {
		t.Fatalf("plain Exec speculated: SpecReads = %d, want 5", s.SpecReads)
	}
}

// TestAdaptiveStatsAndTrace: conflicts on a hot record flip its bucket to
// the lease arm; Stats reports the adaptive line and the arm switch lands
// in the trace ring with Kind = TraceArmSwitch.
func TestAdaptiveStatsAndTrace(t *testing.T) {
	db := MustOpen(Options{
		Nodes: 2, WorkersPerNode: 2,
		// Tight tuning so a handful of conflicts flips the bucket.
		Policies: PolicyOptions{EWMAHalfLife: 8, HotThreshold: 1.0, Hysteresis: 0.5},
	}, func(table int, key uint64) int { return int(key) % 2 })
	defer db.Close()
	db.CreateHashTable(tblAcct, 1024, 1)
	for k := uint64(1); k <= 4; k++ {
		if err := db.Load(tblAcct, k, []uint64{100}); err != nil {
			t.Fatal(err)
		}
	}
	db.EnableTracing(256)
	defer db.DisableTracing()

	// Writer hammers key 1 (node 1) while a reader on node 0 reads it
	// adaptively: validation failures heat the bucket until it flips.
	reader := db.Executor(0, 0)
	writer := db.Executor(1, 0)
	read := func() error {
		return reader.Exec(func(tx *Tx) error {
			if err := tx.R(tblAcct, 1); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error {
				_, err := lc.Read(tblAcct, 1)
				return err
			})
		})
	}
	write := func() error {
		return writer.Exec(func(tx *Tx) error {
			if err := tx.W(tblAcct, 1); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error {
				v, err := lc.Read(tblAcct, 1)
				if err != nil {
					return err
				}
				return lc.Write(tblAcct, 1, []uint64{v[0] + 1})
			})
		})
	}
	// Deterministic conflict: stage the read speculatively (bucket cold),
	// let the writer commit a version bump underneath it — a spec read
	// holds no lock, so the write sails through — then validation fails,
	// heats the bucket past the threshold, and the retry routes via lease.
	bumped := false
	if err := reader.Exec(func(tx *Tx) error {
		if err := tx.R(tblAcct, 1); err != nil {
			return err
		}
		if !bumped {
			bumped = true
			if err := write(); err != nil {
				return err
			}
		}
		return tx.Execute(func(lc *Local) error {
			_, err := lc.Read(tblAcct, 1)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats(); got.SpecValidateFails == 0 || got.ArmSwitchesToLease == 0 {
		t.Fatalf("staged conflict produced no validation failure / switch: %+v", got)
	}

	// Conflict-free reads decay the bucket back below the exit threshold
	// (half-life 8 accesses): the arm switches back to spec.
	for i := 0; i < 40 && db.Stats().ArmSwitchesToSpec == 0; i++ {
		if err := read(); err != nil {
			t.Fatal(err)
		}
	}

	s := db.Stats()
	if s.ArmSwitchesToSpec == 0 {
		t.Fatal("bucket never cooled back to the spec arm")
	}
	if s.AdaptiveSpecReads == 0 {
		t.Fatal("no adaptive spec routes recorded")
	}
	if s.ArmSwitchesToLease == 0 {
		t.Fatalf("bucket never flipped hot: %+v", s)
	}
	if s.ArmSwitches != s.ArmSwitchesToLease+s.ArmSwitchesToSpec {
		t.Fatalf("ArmSwitches %d != to-lease %d + to-spec %d",
			s.ArmSwitches, s.ArmSwitchesToLease, s.ArmSwitchesToSpec)
	}
	if s.HotKeys != s.ArmSwitchesToLease-s.ArmSwitchesToSpec {
		t.Fatalf("HotKeys %d != switch difference", s.HotKeys)
	}
	if s.SpecShare <= 0 || s.SpecShare > 100 {
		t.Fatalf("SpecShare = %.1f, want (0, 100]", s.SpecShare)
	}
	if !strings.Contains(s.String(), "adapt:") {
		t.Fatal("Stats.String missing the adapt row")
	}

	// Both reclassifications must be visible in the trace ring.
	var toHot, toCold int64
	for _, ev := range db.DrainTrace() {
		if ev.Kind != TraceArmSwitch {
			continue
		}
		if ev.Hot {
			toHot++
		} else {
			toCold++
		}
	}
	if toHot != s.ArmSwitchesToLease || toCold != s.ArmSwitchesToSpec {
		t.Fatalf("traced %d/%d arm switches, counters say %d/%d",
			toHot, toCold, s.ArmSwitchesToLease, s.ArmSwitchesToSpec)
	}
}

// TestMVCCPolicyE2E: PolicyMVCC through the public API — Options.MVCCDepth
// builds the version chains, ExecROWith(PolicyMVCC) resolves a consistent
// snapshot with no lease traffic, and the Stats MVCC counters move.
func TestMVCCPolicyE2E(t *testing.T) {
	db := MustOpen(Options{Nodes: 2, WorkersPerNode: 1, MVCCDepth: 4},
		func(table int, key uint64) int { return int(key) % 2 })
	defer db.Close()
	db.CreateHashTable(tblAcct, 1024, 1)
	for k := uint64(1); k <= 4; k++ {
		if err := db.Load(tblAcct, k, []uint64{100}); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite key 1 so a version gets retired into its chain.
	if err := db.ExecWith(0, 0, PolicyLease, func(tx *Tx) error {
		if err := tx.W(tblAcct, 1); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			return lc.Write(tblAcct, 1, []uint64{250})
		})
	}); err != nil {
		t.Fatal(err)
	}
	// The snapshot stamp trails the soft clock by a tick; let it pass the
	// write so the RO sees the new value.
	time.Sleep(time.Millisecond)

	before := db.Stats()
	var got []uint64
	if err := db.ExecROWith(0, 0, PolicyMVCC, func(ro *RO) error {
		v, err := ro.Read(tblAcct, 1) // remote: node 1
		if err != nil {
			return err
		}
		got = append(got[:0], v...)
		_, err = ro.Read(tblAcct, 2) // local
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got[0] != 250 {
		t.Fatalf("snapshot read = %v, want [250]", got)
	}
	d := db.Stats().Delta(before)
	if d.MVCCReads < 2 {
		t.Fatalf("MVCCReads = %d, want >= 2", d.MVCCReads)
	}
	if d.LeaseGrants != 0 || d.SpecReads != 0 {
		t.Fatalf("MVCC RO took a confirm-wave arm: leases=%d specs=%d",
			d.LeaseGrants, d.SpecReads)
	}
	s := db.Stats()
	if s.ChainRetires == 0 {
		t.Fatal("overwrite retired no version into the chain")
	}
	if s.MVCCROLatency.Count == 0 {
		t.Fatal("no mvcc-ro phase latency recorded")
	}
	if !strings.Contains(s.String(), "mvcc:") {
		t.Fatal("Stats.String missing the mvcc row")
	}
}
