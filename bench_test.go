package drtm_test

// One testing.B benchmark per table/figure of the paper's evaluation, each
// delegating to the experiment registry at smoke scale and reporting the
// headline modeled metric. Run the full-scale versions with:
//
//	go run ./cmd/drtm-bench -exp all
//
// plus micro-benchmarks of the public API's hot paths (wall-clock).

import (
	"testing"

	"drtm"
	"drtm/internal/bench"
)

// benchExperiment runs a registered experiment once per b.N batch; the
// interesting output is the experiment's own table, so N is forced to 1.
func benchExperiment(b *testing.B, id string) {
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := e.Run(bench.Options{Quick: true, Seed: 42})
		if len(res.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

func BenchmarkTable2ConflictMatrix(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable4LookupReads(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkFig10aRDMARead(b *testing.B)       { benchExperiment(b, "fig10a") }
func BenchmarkFig10bKVThroughput(b *testing.B)   { benchExperiment(b, "fig10b") }
func BenchmarkFig10cKVLatency(b *testing.B)      { benchExperiment(b, "fig10c") }
func BenchmarkFig10dCacheSweep(b *testing.B)     { benchExperiment(b, "fig10d") }
func BenchmarkFig11Softtime(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkFig12TPCCvsCalvin(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13Threads(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14LogicalNodes(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15SmallBank(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkFig16CrossWarehouse(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17ReadLease(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkTable6Durability(b *testing.B)     { benchExperiment(b, "table6") }
func BenchmarkAblateCache(b *testing.B)          { benchExperiment(b, "ablate-cache") }
func BenchmarkAblateFallbackThresh(b *testing.B) { benchExperiment(b, "ablate-fallback") }
func BenchmarkAblateAtomicityLevel(b *testing.B) { benchExperiment(b, "ablate-atomics") }
func BenchmarkAblateCacheAssoc(b *testing.B)     { benchExperiment(b, "ablate-assoc") }

// ---- public-API micro-benchmarks (wall clock) ----------------------------

func BenchmarkLocalTxn(b *testing.B) {
	db := drtm.MustOpen(drtm.Options{Nodes: 1, WorkersPerNode: 1},
		func(table int, key uint64) int { return 0 })
	defer db.Close()
	db.CreateHashTable(1, 1024, 1)
	for k := uint64(1); k <= 100; k++ {
		_ = db.Load(1, k, []uint64{0})
	}
	e := db.Executor(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%100) + 1
		err := e.Exec(func(tx *drtm.Tx) error {
			if err := tx.W(1, k); err != nil {
				return err
			}
			return tx.Execute(func(lc *drtm.Local) error {
				v, _ := lc.Read(1, k)
				return lc.Write(1, k, []uint64{v[0] + 1})
			})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedTxn(b *testing.B) {
	db := drtm.MustOpen(drtm.Options{Nodes: 2, WorkersPerNode: 1},
		func(table int, key uint64) int { return int(key) % 2 })
	defer db.Close()
	db.CreateHashTable(1, 1024, 1)
	for k := uint64(1); k <= 100; k++ {
		_ = db.Load(1, k, []uint64{0})
	}
	e := db.Executor(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		local := uint64((i%50)*2+2) - 0 // even: node 0
		remote := uint64((i%50)*2) + 1  // odd: node 1
		err := e.Exec(func(tx *drtm.Tx) error {
			if err := tx.W(1, remote); err != nil {
				return err
			}
			if err := tx.W(1, local); err != nil {
				return err
			}
			return tx.Execute(func(lc *drtm.Local) error {
				v, _ := lc.Read(1, remote)
				if err := lc.Write(1, remote, []uint64{v[0] + 1}); err != nil {
					return err
				}
				w, _ := lc.Read(1, local)
				return lc.Write(1, local, []uint64{w[0] + 1})
			})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadOnlyTxn20Records(b *testing.B) {
	db := drtm.MustOpen(drtm.Options{Nodes: 2, WorkersPerNode: 1},
		func(table int, key uint64) int { return int(key) % 2 })
	defer db.Close()
	db.CreateHashTable(1, 1024, 1)
	for k := uint64(1); k <= 100; k++ {
		_ = db.Load(1, k, []uint64{0})
	}
	e := db.Executor(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := e.ExecRO(func(ro *drtm.RO) error {
			for k := uint64(1); k <= 20; k++ {
				if _, err := ro.Read(1, k); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
