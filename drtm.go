// Package drtm is a faithful Go reproduction of DrTM — "Fast In-memory
// Transaction Processing using RDMA and HTM" (Wei et al., SOSP 2015) — as a
// library: strictly serializable distributed transactions whose local part
// runs in an (emulated) HTM region and whose cross-machine coordination
// uses one-sided RDMA verbs, leases for shared locks, an HTM/RDMA-friendly
// key-value store with a location-based cache, read-only transactions,
// transaction chopping, and durability with cooperative recovery.
//
// The hardware the paper requires (Intel RTM, InfiniBand RDMA, a multi-node
// cluster) is simulated in-process with the semantics the protocol depends
// on preserved — see DESIGN.md for the substitution table. The library runs
// a whole logical cluster inside one process:
//
//	db := drtm.Open(drtm.Options{Nodes: 2, WorkersPerNode: 2},
//		func(table int, key uint64) int { return int(key) % 2 })
//	defer db.Close()
//
//	const accounts = 1
//	db.CreateHashTable(accounts, 1024, 1)
//	db.Load(accounts, 1, []uint64{100})
//	db.Load(accounts, 2, []uint64{100})
//
//	e := db.Executor(0, 0) // worker 0 on node 0
//	err := e.Exec(func(t *drtm.Tx) error {
//		if err := t.W(accounts, 1); err != nil { // local
//			return err
//		}
//		if err := t.W(accounts, 2); err != nil { // remote: RDMA-locked
//			return err
//		}
//		return t.Execute(func(lc *drtm.Local) error {
//			a, _ := lc.Read(accounts, 1)
//			b, _ := lc.Read(accounts, 2)
//			if err := lc.Write(accounts, 1, []uint64{a[0] - 10}); err != nil {
//				return err
//			}
//			return lc.Write(accounts, 2, []uint64{b[0] + 10})
//		})
//	})
//
// See examples/ for runnable programs and cmd/drtm-bench for the harness
// that regenerates the paper's evaluation.
package drtm

import (
	"time"

	"drtm/internal/cluster"
	"drtm/internal/rdma"
	"drtm/internal/tx"
)

// Re-exported transaction-layer types: these are the user-facing API.
type (
	// Tx is a read-write (possibly distributed) transaction context.
	Tx = tx.Tx
	// Local is the transaction body's view inside the HTM region.
	Local = tx.Local
	// RO is a lease-based read-only transaction.
	RO = tx.RO
	// Executor runs transactions on behalf of one worker thread.
	Executor = tx.Executor
	// PartitionFunc maps records to their home node; return -1 for
	// replicated (always-local) tables.
	PartitionFunc = tx.Partitioner
	// RecoveryReport summarizes crash recovery.
	RecoveryReport = tx.RecoveryReport
)

// Common errors, re-exported.
var (
	ErrRetry     = tx.ErrRetry
	ErrUserAbort = tx.ErrUserAbort
	ErrNotFound  = tx.ErrNotFound
	ErrNodeDown  = tx.ErrNodeDown
)

// Options configures a DrTM deployment.
type Options struct {
	// Nodes is the number of logical machines; WorkersPerNode the worker
	// threads per machine (the paper's setup: 6 nodes x 8 workers).
	Nodes          int
	WorkersPerNode int

	// Durability enables NVRAM logging and crash recovery (Section 4.6).
	Durability bool

	// LeaseMicros / ROLeaseMicros are the shared-lock lease durations. The
	// defaults (5 ms / 10 ms) are scaled up from the paper's 0.4/1.0 ms
	// because lease expiry runs on real time while the simulation host may
	// interleave dozens of workers on few cores; see DESIGN.md.
	LeaseMicros   uint64
	ROLeaseMicros uint64

	// GlobalAtomics selects IBV_ATOMIC_GLOB-style NICs, letting protocol
	// paths lock local records with CPU CAS (Section 6.3).
	GlobalAtomics bool

	// HTMWriteLines/HTMReadLines bound the emulated HTM working set in
	// 64-byte cache lines (defaults: 512 / 4096, Haswell-class).
	HTMWriteLines int
	HTMReadLines  int
}

// DB is an open DrTM deployment: a simulated cluster plus the transaction
// runtime.
type DB struct {
	C  *cluster.Cluster
	RT *tx.Runtime
}

// Open builds and starts a deployment.
func Open(o Options, part PartitionFunc) *DB {
	if o.Nodes <= 0 {
		o.Nodes = 1
	}
	if o.WorkersPerNode <= 0 {
		o.WorkersPerNode = 1
	}
	cfg := cluster.DefaultConfig(o.Nodes, o.WorkersPerNode)
	cfg.Durability = o.Durability
	if o.LeaseMicros > 0 {
		cfg.LeaseMicros = o.LeaseMicros
	} else {
		cfg.LeaseMicros = 5_000
	}
	if o.ROLeaseMicros > 0 {
		cfg.ROLeaseMicros = o.ROLeaseMicros
	} else {
		cfg.ROLeaseMicros = 10_000
	}
	if o.GlobalAtomics {
		cfg.Atomicity = rdma.AtomicGLOB
	}
	if o.HTMWriteLines > 0 {
		cfg.HTM.WriteLines = o.HTMWriteLines
	}
	if o.HTMReadLines > 0 {
		cfg.HTM.ReadLines = o.HTMReadLines
	}
	c := cluster.New(cfg)
	c.Start()
	return &DB{C: c, RT: tx.NewRuntime(c, part)}
}

// Close stops the deployment's background threads.
func (db *DB) Close() { db.C.Stop() }

// CreateHashTable defines an unordered (DrTM-KV cluster-chaining hash)
// table sharded across all nodes; capacity and valueWords are per node.
// Unordered tables have a one-sided RDMA path for remote access.
func (db *DB) CreateHashTable(id, capacity, valueWords int) {
	buckets := capacity / 4
	if buckets < 16 {
		buckets = 16
	}
	db.RT.DefineUnordered(id, buckets, buckets, capacity, valueWords)
}

// CreateOrderedTable defines an ordered (B+ tree) table sharded across all
// nodes. Remote access ships to the host over verbs, per the paper.
func (db *DB) CreateOrderedTable(id, capacity, valueWords int) {
	db.RT.DefineOrdered(id, capacity, valueWords)
}

// Executor returns worker w of node n's transaction executor. Executors
// are single-goroutine objects: create one per worker goroutine.
func (db *DB) Executor(node, worker int) *Executor { return db.RT.Executor(node, worker) }

// Load inserts a record directly on its home node (bulk population outside
// transactions).
func (db *DB) Load(table int, key uint64, val []uint64) error {
	node := db.RT.Part(table, key)
	if node < 0 {
		// Replicated table: load on every node.
		for n := 0; n < db.C.Nodes(); n++ {
			if err := db.loadOn(n, table, key, val); err != nil {
				return err
			}
		}
		return nil
	}
	return db.loadOn(node, table, key, val)
}

func (db *DB) loadOn(node, table int, key uint64, val []uint64) error {
	if db.RT.Meta(table).Kind == tx.Ordered {
		return db.C.Node(node).Ordered(table).Insert(key, val)
	}
	return db.C.Node(node).Unordered(table).Insert(key, val)
}

// Get reads a record's current value directly (outside any transaction);
// intended for verification and tooling.
func (db *DB) Get(table int, key uint64) ([]uint64, bool) {
	node := db.RT.Part(table, key)
	if node < 0 {
		node = 0
	}
	if db.RT.Meta(table).Kind == tx.Ordered {
		return db.C.Node(node).Ordered(table).Get(key)
	}
	return db.C.Node(node).Unordered(table).Get(key)
}

// Crash fail-stops a node (its memory and NVRAM logs stay readable, per
// the flush-on-failure model).
func (db *DB) Crash(node int) { db.C.Crash(node) }

// Recover replays the crashed node's NVRAM logs: redo for committed
// transactions, lock release for uncommitted ones (Figure 7).
func (db *DB) Recover(node int) RecoveryReport { return db.RT.Recover(node) }

// Revive marks a recovered node alive.
func (db *DB) Revive(node int) { db.C.Revive(node) }

// Stats is a snapshot of runtime-wide transaction counters.
type Stats struct {
	Commits, Retries, HTMAborts, CapacityAborts int64
	LeaseFails, Fallbacks, ROCommits, RORetries int64
}

// Stats returns current counters.
func (db *DB) Stats() Stats {
	s := &db.RT.Stats
	return Stats{
		Commits: s.Commits.Load(), Retries: s.Retries.Load(),
		HTMAborts: s.HTMAborts.Load(), CapacityAborts: s.CapacityAborts.Load(),
		LeaseFails: s.LeaseFails.Load(), Fallbacks: s.Fallbacks.Load(),
		ROCommits: s.ROCommits.Load(), RORetries: s.RORetries.Load(),
	}
}

// WorkerVirtualTime returns a worker's accumulated modeled execution time,
// the basis for throughput reporting (see DESIGN.md).
func (db *DB) WorkerVirtualTime(node, worker int) time.Duration {
	return db.C.Worker(node, worker).VClock.Now()
}

// RemoteOpCounts reports cluster-wide one-sided RDMA operation totals.
func (db *DB) RemoteOpCounts() (reads, writes, cas int64) {
	t := &db.C.Fabric.Totals
	return t.Reads.Load(), t.Writes.Load(), t.CASes.Load()
}

// LocationCacheStats aggregates location-cache hit/miss/invalidation
// counts across the cluster (Section 5.3).
func (db *DB) LocationCacheStats() (hits, misses, invals int64) {
	return db.RT.CacheStats()
}
