// Package drtm is a faithful Go reproduction of DrTM — "Fast In-memory
// Transaction Processing using RDMA and HTM" (Wei et al., SOSP 2015) — as a
// library: strictly serializable distributed transactions whose local part
// runs in an (emulated) HTM region and whose cross-machine coordination
// uses one-sided RDMA verbs, leases for shared locks, an HTM/RDMA-friendly
// key-value store with a location-based cache, read-only transactions,
// transaction chopping, and durability with cooperative recovery.
//
// The hardware the paper requires (Intel RTM, InfiniBand RDMA, a multi-node
// cluster) is simulated in-process with the semantics the protocol depends
// on preserved — see DESIGN.md for the substitution table. The library runs
// a whole logical cluster inside one process:
//
//	db := drtm.MustOpen(drtm.Options{Nodes: 2, WorkersPerNode: 2},
//		func(table int, key uint64) int { return int(key) % 2 })
//	defer db.Close()
//
//	const accounts = 1
//	db.CreateHashTable(accounts, 1024, 1)
//	db.Load(accounts, 1, []uint64{100})
//	db.Load(accounts, 2, []uint64{100})
//
//	e := db.Executor(0, 0) // worker 0 on node 0
//	err := e.Exec(func(t *drtm.Tx) error {
//		if err := t.W(accounts, 1); err != nil { // local
//			return err
//		}
//		if err := t.W(accounts, 2); err != nil { // remote: RDMA-locked
//			return err
//		}
//		return t.Execute(func(lc *drtm.Local) error {
//			a, _ := lc.Read(accounts, 1)
//			b, _ := lc.Read(accounts, 2)
//			if err := lc.Write(accounts, 1, []uint64{a[0] - 10}); err != nil {
//				return err
//			}
//			return lc.Write(accounts, 2, []uint64{b[0] + 10})
//		})
//	})
//
// Afterwards, db.Stats() returns an immutable snapshot of every protocol
// counter (HTM abort causes, lease events, RDMA op counts, phase latency
// histograms); two snapshots subtract with Delta to scope an interval. See
// the README's Observability section.
//
// See examples/ for runnable programs and cmd/drtm-bench for the harness
// that regenerates the paper's evaluation.
package drtm

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"drtm/internal/clock"
	"drtm/internal/cluster"
	"drtm/internal/kvs"
	"drtm/internal/obs"
	"drtm/internal/rdma"
	"drtm/internal/tx"
)

// Re-exported transaction-layer types: these are the user-facing API.
type (
	// Tx is a read-write (possibly distributed) transaction context.
	Tx = tx.Tx
	// Local is the transaction body's view inside the HTM region.
	Local = tx.Local
	// RO is a read-only transaction: confirm-wave (lease or speculative
	// arm) by default, snapshot-stamped over the version chains under
	// PolicyMVCC.
	RO = tx.RO
	// Executor runs transactions on behalf of one worker thread.
	Executor = tx.Executor
	// PartitionFunc maps records to their home node; return -1 for
	// replicated (always-local) tables.
	PartitionFunc = tx.Partitioner
	// RecoveryReport summarizes crash recovery.
	RecoveryReport = tx.RecoveryReport
	// FailoverReport summarizes one hot-failover promotion.
	FailoverReport = tx.FailoverReport
	// Access declares one record of a transaction's read/write set for
	// Tx.Stage, which batches the whole set through the async verb engine.
	Access = tx.Access
	// ReadPolicy selects the concurrency-control arm for remote read-set
	// records; see Options.ReadPolicy and the Policy* constants.
	ReadPolicy = tx.ReadPolicy
	// PolicyOptions tunes PolicyAdaptive's conflict-heat table; see
	// Options.Policies. Zero fields select defaults.
	PolicyOptions = tx.PolicyConfig
	// ScanRow is one live row returned by a transactional range scan
	// (Tx.Scan / RO.Scan). Val aliases transaction-private scratch and is
	// only valid inside the transaction body.
	ScanRow = tx.ScanRow
	// IndexSpec declares a secondary index over an ordered base table for
	// DB.CreateIndex: Key maps a base row to its unique index key, and the
	// index entry's first value word carries the base key back.
	IndexSpec = tx.IndexSpec
)

// Read policies, re-exported from the transaction layer.
const (
	// PolicyLease: every remote read takes a lease-based shared lock via
	// RDMA CAS (~14.5µs modeled) — the paper's Section 4.2 protocol.
	PolicyLease = tx.PolicyLease
	// PolicySpeculative: every remote read is a one-RTT OCC read (~1.5µs),
	// version-validated at commit time; a conflict retries the transaction.
	PolicySpeculative = tx.PolicySpeculative
	// PolicyAdaptive (the default): per-bucket online choice — a conflict
	// EWMA classifies each hash bucket hot or cold with hysteresis, and
	// reads route lease-when-hot, spec-when-cold, re-classifying
	// continuously as the workload shifts.
	PolicyAdaptive = tx.PolicyAdaptive
	// PolicyExclusive: remote reads take exclusive write locks (the
	// paper's Figure 17 "no read lease" ablation; no read-read sharing).
	PolicyExclusive = tx.PolicyExclusive
	// PolicyMVCC: read-only transactions resolve every key against a
	// cluster-wide snapshot stamp using the per-entry version chains
	// (Options.MVCCDepth) — one batched READ wave, no lease CAS and no
	// confirm wave. A chain too shallow for the snapshot falls back to the
	// confirm-wave scheme for that RO execution. Read-write transactions
	// under this policy use the lease arm; requires MVCCDepth ≥ 0 (chains
	// enabled).
	PolicyMVCC = tx.PolicyMVCC
)

// Common errors, re-exported.
var (
	ErrRetry     = tx.ErrRetry
	ErrUserAbort = tx.ErrUserAbort
	ErrNotFound  = tx.ErrNotFound
	ErrNodeDown  = tx.ErrNodeDown
)

// Options configures a DrTM deployment.
type Options struct {
	// Nodes is the number of logical machines; WorkersPerNode the worker
	// threads per machine (the paper's setup: 6 nodes x 8 workers).
	Nodes          int
	WorkersPerNode int

	// Durability enables NVRAM logging and crash recovery (Section 4.6).
	Durability bool

	// ReplicationFactor enables FaRM-style primary–backup replication: every
	// partition is replicated to this many ring-successor backups, committed
	// write-sets are appended to each backup's redo log with one-sided RDMA
	// log-append WRITEs before locks release, and — with FailureDetection —
	// a confirmed crash promotes the highest-ranked live backup, which
	// replays only its redo tail (hot failover) instead of the full NVRAM
	// replay. Requires Durability (stuck exclusive locks are released via the
	// lock-ahead log) and at least ReplicationFactor+1 nodes. 0 disables
	// replication.
	ReplicationFactor int

	// LeaseMicros / ROLeaseMicros are the shared-lock lease durations. The
	// defaults (5 ms / 10 ms) are scaled up from the paper's 0.4/1.0 ms
	// because lease expiry runs on real time while the simulation host may
	// interleave dozens of workers on few cores; see DESIGN.md.
	LeaseMicros   uint64
	ROLeaseMicros uint64

	// GlobalAtomics selects IBV_ATOMIC_GLOB-style NICs, letting protocol
	// paths lock local records with CPU CAS (Section 6.3).
	GlobalAtomics bool

	// HTMWriteLines/HTMReadLines bound the emulated HTM working set in
	// 64-byte cache lines (defaults: 512 / 4096, Haswell-class).
	HTMWriteLines int
	HTMReadLines  int

	// FailureDetection enables lease-based membership (Section 4.6): every
	// node heartbeats a shared membership region; survivors detect an
	// expired lease, confirm the death by probing, elect a recovery
	// coordinator with RDMA CAS, and the coordinator replays the crashed
	// node's NVRAM logs and revives it — no oracle notification anywhere.
	FailureDetection bool

	// HeartbeatInterval, FailureTimeout and ElectionStagger tune the
	// detector (defaults: 1 ms / 30 ms / 5 ms). FailureTimeout should span
	// many heartbeats so scheduling hiccups don't read as crashes.
	HeartbeatInterval time.Duration
	FailureTimeout    time.Duration
	ElectionStagger   time.Duration

	// FaultSeed seeds the fabric's fault-injection RNG, making a chaos
	// run's verb-level fault sequence reproducible. Zero means seed 1.
	FaultSeed int64

	// BatchWindow bounds outstanding work requests per worker in the async
	// verb engine's batched Start/Commit pipelines. 0 selects the default
	// window (16); 1 serializes every verb, reproducing the pre-batching
	// round-trip-per-op behavior.
	BatchWindow int

	// ReadPolicy selects the concurrency-control arm for remote read-set
	// records: PolicyLease, PolicySpeculative, PolicyAdaptive,
	// PolicyExclusive or PolicyMVCC (see the constants' docs; PolicyMVCC
	// affects read-only transactions). The zero value selects
	// PolicyAdaptive — per-bucket online routing between the lease and
	// speculative arms, which the `adaptive` experiment shows tracks the
	// better static arm across skew and write ratios. The software
	// fallback path always uses locks regardless of policy.
	ReadPolicy ReadPolicy

	// Policies tunes PolicyAdaptive's heat table — conflict-EWMA half-life
	// (in bucket accesses), the hot-entry threshold, the exit hysteresis
	// fraction, and the table size; zero fields select defaults
	// (64 accesses / 8.0 / 0.5 / 4096 slots) — plus the adaptive RO-scan
	// routing thresholds MVCCScanFanout/MVCCHotFanout (defaults 32 / 8):
	// an RO scan whose fanout reaches the threshold takes the snapshot
	// (MVCC) arm, with the lower threshold applying to ranges the heat
	// table classifies hot. Ignored by static policies.
	Policies PolicyOptions

	// MVCCDepth is the per-entry version-chain ring depth backing
	// PolicyMVCC snapshot reads: each writer retires the previous
	// (stamp, version, value) triple into a fixed ring of this many slots,
	// and snapshot reads resolve the newest version at or below their
	// stamp. 0 selects the default depth (4); a negative value disables
	// version chains entirely (PolicyMVCC then degrades to the confirm-wave
	// scheme). Deeper chains tolerate staler snapshots at the cost of
	// value-words × depth extra memory per entry.
	MVCCDepth int

	// SpeculativeReads selects the speculative (OCC) read arm for every
	// remote read.
	//
	// Deprecated: set ReadPolicy: PolicySpeculative. Setting this together
	// with a conflicting ReadPolicy (or with NoReadLease) is an Open error.
	SpeculativeReads bool

	// NoReadLease makes remote reads take exclusive locks (the Figure 17
	// ablation).
	//
	// Deprecated: set ReadPolicy: PolicyExclusive. Setting this together
	// with a conflicting ReadPolicy (or with SpeculativeReads) is an Open
	// error.
	NoReadLease bool
}

// maxLeaseMicros bounds lease durations: the state word encodes lease end
// times (softtime µs + duration) in a 55-bit field, so durations anywhere
// near that range would overflow the encoding. 2^40 µs (~13 days) is far
// beyond any sane lease and leaves 15 bits of headroom for the clock.
const maxLeaseMicros = uint64(1) << 40

// normalize validates o and fills defaults, rejecting nonsense values
// instead of silently "fixing" them.
func (o Options) normalize() (Options, error) {
	if o.Nodes < 0 {
		return o, fmt.Errorf("drtm: Options.Nodes must be >= 0, got %d", o.Nodes)
	}
	if o.Nodes == 0 {
		o.Nodes = 1
	}
	if o.Nodes > clock.MaxOwner+1 {
		// The state word's owner field is 8 bits (Figure 4).
		return o, fmt.Errorf("drtm: Options.Nodes %d exceeds the state word's owner capacity (%d)",
			o.Nodes, clock.MaxOwner+1)
	}
	if o.WorkersPerNode < 0 {
		return o, fmt.Errorf("drtm: Options.WorkersPerNode must be >= 0, got %d", o.WorkersPerNode)
	}
	if o.WorkersPerNode == 0 {
		o.WorkersPerNode = 1
	}
	if o.WorkersPerNode > 256 {
		// Transaction IDs pack the worker index into 8 bits.
		return o, fmt.Errorf("drtm: Options.WorkersPerNode %d exceeds 256", o.WorkersPerNode)
	}
	if o.ReplicationFactor < 0 {
		return o, fmt.Errorf("drtm: Options.ReplicationFactor must be >= 0, got %d", o.ReplicationFactor)
	}
	if o.ReplicationFactor >= o.Nodes {
		return o, fmt.Errorf("drtm: Options.ReplicationFactor %d needs at least %d nodes, got %d",
			o.ReplicationFactor, o.ReplicationFactor+1, o.Nodes)
	}
	if o.ReplicationFactor > 0 && !o.Durability {
		return o, errors.New("drtm: Options.ReplicationFactor requires Options.Durability (failover releases a crashed primary's locks via its lock-ahead log)")
	}
	if o.HTMWriteLines < 0 {
		return o, fmt.Errorf("drtm: Options.HTMWriteLines must be >= 0, got %d", o.HTMWriteLines)
	}
	if o.HTMReadLines < 0 {
		return o, fmt.Errorf("drtm: Options.HTMReadLines must be >= 0, got %d", o.HTMReadLines)
	}
	if o.LeaseMicros == 0 {
		o.LeaseMicros = 5_000
	}
	if o.LeaseMicros > maxLeaseMicros {
		return o, fmt.Errorf("drtm: Options.LeaseMicros %d overflows the state-word lease field (max %d)",
			o.LeaseMicros, maxLeaseMicros)
	}
	if o.ROLeaseMicros == 0 {
		o.ROLeaseMicros = 10_000
	}
	if o.ROLeaseMicros > maxLeaseMicros {
		return o, fmt.Errorf("drtm: Options.ROLeaseMicros %d overflows the state-word lease field (max %d)",
			o.ROLeaseMicros, maxLeaseMicros)
	}
	if o.HeartbeatInterval < 0 || o.FailureTimeout < 0 || o.ElectionStagger < 0 {
		return o, errors.New("drtm: failure-detection durations must be >= 0")
	}
	if o.FaultSeed == 0 {
		o.FaultSeed = 1
	}
	if o.BatchWindow < 0 {
		return o, fmt.Errorf("drtm: Options.BatchWindow must be >= 0, got %d", o.BatchWindow)
	}
	// Resolve the read policy: the typed knob wins; the deprecated alias
	// bools map onto it through one uniform rule — an alias forces its
	// policy, any two set aliases conflict, and an alias set alongside a
	// different explicit ReadPolicy conflicts — rather than each alias
	// hand-rolling its own precedence.
	if !o.ReadPolicy.Valid() {
		return o, fmt.Errorf("drtm: unknown Options.ReadPolicy %d", int(o.ReadPolicy))
	}
	aliases := []struct {
		set    bool
		name   string
		policy ReadPolicy
	}{
		{o.SpeculativeReads, "SpeculativeReads", PolicySpeculative},
		{o.NoReadLease, "NoReadLease", PolicyExclusive},
	}
	forced := ""
	for _, a := range aliases {
		if !a.set {
			continue
		}
		if forced != "" {
			return o, fmt.Errorf("drtm: deprecated Options.%s and Options.%s conflict; set Options.ReadPolicy instead",
				forced, a.name)
		}
		if o.ReadPolicy != tx.PolicyDefault && o.ReadPolicy != a.policy {
			return o, fmt.Errorf("drtm: deprecated Options.%s conflicts with Options.ReadPolicy %v",
				a.name, o.ReadPolicy)
		}
		o.ReadPolicy, forced = a.policy, a.name
	}
	if o.ReadPolicy == tx.PolicyDefault {
		o.ReadPolicy = PolicyAdaptive
	}
	if o.ReadPolicy == PolicyMVCC && o.MVCCDepth < 0 {
		return o, errors.New("drtm: Options.ReadPolicy PolicyMVCC requires version chains; leave Options.MVCCDepth >= 0")
	}
	return o, nil
}

// DB is an open DrTM deployment: a simulated cluster plus the transaction
// runtime.
//
// The exported C and RT fields are escape hatches into the internal layers
// for tests and experiments that need to reach below the public API (e.g.
// direct shard access or runtime tuning knobs). They are NOT part of the
// stable API: prefer the DB accessors — Nodes, WorkersPerNode, Stats,
// Executor, WorkerVirtualTime — which cover normal use.
type DB struct {
	C  *cluster.Cluster
	RT *tx.Runtime

	faults *rdma.FaultPlan
}

// FaultRule configures fault injection on a node or link: each matching
// verb fails with probability FailProb (charged the verb timeout) and is
// delayed by ExtraNS modeled nanoseconds.
type FaultRule = rdma.FaultRule

// Open validates o, then builds and starts a deployment. The partition
// function is required (return -1 from it for replicated tables).
func Open(o Options, part PartitionFunc) (*DB, error) {
	if part == nil {
		return nil, errors.New("drtm: Open requires a partition function")
	}
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	cfg := cluster.DefaultConfig(o.Nodes, o.WorkersPerNode)
	cfg.Durability = o.Durability
	cfg.ReplicationFactor = o.ReplicationFactor
	cfg.LeaseMicros = o.LeaseMicros
	cfg.ROLeaseMicros = o.ROLeaseMicros
	if o.GlobalAtomics {
		cfg.Atomicity = rdma.AtomicGLOB
	}
	if o.HTMWriteLines > 0 {
		cfg.HTM.WriteLines = o.HTMWriteLines
	}
	if o.HTMReadLines > 0 {
		cfg.HTM.ReadLines = o.HTMReadLines
	}
	if o.MVCCDepth != 0 {
		// Negative disables chains; cluster validation clamps it to 0.
		cfg.MVCCDepth = o.MVCCDepth
	}
	cfg.FailureDetection = o.FailureDetection
	if o.HeartbeatInterval > 0 {
		cfg.HeartbeatInterval = o.HeartbeatInterval
	}
	if o.FailureTimeout > 0 {
		cfg.FailureTimeout = o.FailureTimeout
	}
	if o.ElectionStagger > 0 {
		cfg.ElectionStagger = o.ElectionStagger
	}
	c := cluster.New(cfg)
	db := &DB{C: c, RT: tx.NewRuntime(c, part), faults: rdma.NewFaultPlan(o.FaultSeed)}
	db.RT.BatchWindow = o.BatchWindow
	db.RT.ReadPolicy = o.ReadPolicy
	db.RT.SetPolicyConfig(o.Policies)
	c.Fabric.SetFaultPlan(db.faults)
	if o.FailureDetection {
		db.RT.EnableAutoRecovery()
	}
	c.Start()
	return db, nil
}

// InjectNodeFaults makes every verb targeting node fail or slow per r;
// InjectLinkFaults scopes the rule to the (from, to) direction. Rules
// stack: a verb draws against both its node and link rules. ClearFaults
// removes all rules. The underlying RNG is seeded from Options.FaultSeed,
// so a fixed workload replays an identical fault sequence.
func (db *DB) InjectNodeFaults(node int, r FaultRule)     { db.faults.NodeRule(node, r) }
func (db *DB) InjectLinkFaults(from, to int, r FaultRule) { db.faults.LinkRule(from, to, r) }
func (db *DB) ClearFaults()                               { db.faults.Clear() }

// MustOpen is Open, panicking on invalid options; convenient for examples,
// tests and benchmarks where options are literals.
func MustOpen(o Options, part PartitionFunc) *DB {
	db, err := Open(o, part)
	if err != nil {
		panic(err)
	}
	return db
}

// Nodes returns the number of logical machines in the deployment.
func (db *DB) Nodes() int { return db.C.Nodes() }

// WorkersPerNode returns the number of worker threads per machine.
func (db *DB) WorkersPerNode() int { return db.C.Config().WorkersPerNode }

// Close stops the deployment's background threads.
func (db *DB) Close() { db.C.Stop() }

// CreateHashTable defines an unordered (DrTM-KV cluster-chaining hash)
// table sharded across all nodes; capacity and valueWords are per node.
// Unordered tables have a one-sided RDMA path for remote access.
func (db *DB) CreateHashTable(id, capacity, valueWords int) {
	buckets := capacity / 4
	if buckets < 16 {
		buckets = 16
	}
	db.RT.DefineUnordered(id, buckets, buckets, capacity, valueWords)
}

// CreateOrderedTable defines an ordered (B+ tree) table sharded across all
// nodes. Remote access ships to the host over verbs, per the paper.
func (db *DB) CreateOrderedTable(id, capacity, valueWords int) {
	db.RT.DefineOrdered(id, capacity, valueWords)
}

// CreateOrderedTableSeg is CreateOrderedTable with an explicit segment
// shift for the table's phantom-detection stamps: scans validate the stamp
// words covering key>>segShift for their range, so segShift should strip
// the intra-entity low bits of a composite key encoding (e.g. 8 for keys of
// the form id<<8|sub) to keep unrelated inserts from invalidating a scan.
func (db *DB) CreateOrderedTableSeg(id, capacity, valueWords int, segShift uint) {
	db.RT.DefineOrderedSeg(id, capacity, valueWords, segShift)
}

// CreateIndex attaches a declared secondary index to an ordered base table.
// Both tables must already be created (ordered; the index with >= 1 value
// word). Tx.WInsert and Tx.Erase maintain the index atomically with the
// base write — inside the same HTM region on the fast path, under ordered
// index locks on the fallback. The partitioner must co-locate each index
// key with its base row's partition.
func (db *DB) CreateIndex(base int, spec IndexSpec) {
	db.RT.DefineIndex(base, spec)
}

// Executor returns worker w of node n's transaction executor. Executors
// are single-goroutine objects: create one per worker goroutine.
func (db *DB) Executor(node, worker int) *Executor { return db.RT.Executor(node, worker) }

// ExecWith runs one read-write transaction on the given worker with the
// read policy forced to p for every attempt, overriding Options.ReadPolicy
// — e.g. forcing PolicySpeculative for a read-mostly transaction the heat
// table would route conservatively. Per-worker convenience over
// Executor.ExecWith; long-lived workers should hold an Executor and call
// its ExecWith instead.
func (db *DB) ExecWith(node, worker int, p ReadPolicy, build func(t *Tx) error) error {
	return db.RT.Executor(node, worker).ExecWith(p, build)
}

// ExecROWith runs one read-only transaction with the read policy forced to
// p (see ExecWith); read-only scans typically force PolicySpeculative to
// skip every lease CAS regardless of heat.
func (db *DB) ExecROWith(node, worker int, p ReadPolicy, build func(ro *RO) error) error {
	return db.RT.Executor(node, worker).ExecROWith(p, build)
}

// Load inserts a record directly on its home node (bulk population outside
// transactions). Under replication, the record is seeded into every backup's
// replica shard too, so a promoted backup starts from a complete copy.
func (db *DB) Load(table int, key uint64, val []uint64) error {
	part := db.RT.Part(table, key)
	if part < 0 {
		// Replicated table: load on every node.
		for n := 0; n < db.C.Nodes(); n++ {
			if err := db.loadOn(n, table, table, key, val); err != nil {
				return err
			}
		}
		return nil
	}
	if err := db.loadOn(part, table, table, key, val); err != nil {
		return err
	}
	for _, b := range db.C.Backups(nil, part) {
		if err := db.loadOn(b, table, cluster.ReplicaRegion(part, table), key, val); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) loadOn(node, table, region int, key uint64, val []uint64) error {
	if db.RT.Meta(table).Kind == tx.Ordered {
		return db.C.Node(node).Ordered(region).Insert(key, val)
	}
	return db.C.Node(node).Unordered(region).Insert(key, val)
}

// Get reads a record's current value directly (outside any transaction);
// intended for verification and tooling. Routed by the current view: after
// a failover it reads the promoted backup's copy.
func (db *DB) Get(table int, key uint64) ([]uint64, bool) {
	part := db.RT.Part(table, key)
	if part < 0 {
		part = 0
	}
	node, region := part, table
	if owner := db.C.OwnerOf(part); owner != part {
		node, region = owner, cluster.ReplicaRegion(part, table)
	}
	if db.RT.Meta(table).Kind == tx.Ordered {
		o, ok := db.C.Node(node).OrderedRegion(region)
		if !ok {
			return nil, false
		}
		off, ok := o.Lookup(key)
		if !ok || !kvs.Live(kvs.Incarnation(o.Arena().LoadWord(off+kvs.EntryIncVerWord))) {
			// Structurally present but dead: a staged insert's first half or
			// an erased row awaiting removal — logically absent.
			return nil, false
		}
		return o.Get(key)
	}
	return db.C.Node(node).Unordered(region).Get(key)
}

// Crash fail-stops a node (its memory and NVRAM logs stay readable, per
// the flush-on-failure model).
func (db *DB) Crash(node int) { db.C.Crash(node) }

// Recover replays the crashed node's NVRAM logs: redo for committed
// transactions, lock release for uncommitted ones (Figure 7).
func (db *DB) Recover(node int) RecoveryReport { return db.RT.Recover(node) }

// Failover promotes a live backup to own a crashed node's partition and
// replays its redo tail (hot failover; requires ReplicationFactor > 0).
// With FailureDetection enabled the elected coordinator calls this
// automatically on a confirmed death; the explicit form exists for tests
// and tooling. Idempotent: a repeated call reports Promoted=false.
func (db *DB) Failover(node int) FailoverReport { return db.RT.Failover(node) }

// ReplicationFactor returns the configured backup count per partition.
func (db *DB) ReplicationFactor() int { return db.C.ReplicationFactor() }

// PartitionOwner returns the node currently owning partition p's key range
// (p itself until a failover promotes a backup).
func (db *DB) PartitionOwner(p int) int { return db.C.OwnerOf(p) }

// Revive marks a recovered node alive and drains any release-side writes
// that committed transactions parked while the node was unreachable.
func (db *DB) Revive(node int) {
	db.C.Revive(node)
	db.RT.FlushPending(node)
}

// Latency summarizes one transaction phase's latency histogram. Durations
// are modeled (virtual-clock) time — the same time base as throughput
// reporting; see DESIGN.md.
type Latency struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

func latencyOf(h obs.HistSnapshot) Latency {
	return Latency{
		Count: h.Count,
		Mean:  time.Duration(h.Mean()),
		P50:   time.Duration(h.Percentile(50)),
		P95:   time.Duration(h.Percentile(95)),
		P99:   time.Duration(h.Percentile(99)),
		Max:   time.Duration(h.Max),
	}
}

// Stats is an immutable snapshot of every protocol counter in the
// deployment, taken with DB.Stats. Subtract two snapshots with Delta to
// scope counters to an interval.
type Stats struct {
	// Transaction outcomes (Sections 7.2-7.4).
	Commits   int64 // read-write transactions committed
	Retries   int64 // whole-transaction retries (lock/lease conflicts)
	Fallbacks int64 // executions completed on the software fallback path
	ROCommits int64 // read-only transactions committed
	RORetries int64 // read-only transaction retries

	// HTM region outcomes by abort cause (Section 7.4 / Table 6).
	HTMCommits     int64
	HTMAborts      int64 // sum of the five cause counters below
	ConflictAborts int64 // working-set conflicts
	CapacityAborts int64 // working set exceeded hardware bounds
	LockedAborts   int64 // local record found remotely locked
	LeaseAborts    int64 // lease invalid at in-region confirmation
	ExplicitAborts int64 // other explicit aborts

	// Lease protocol events (Sections 4.2 and 4.5 / Figures 5 and 8).
	LeaseGrants         int64 // fresh shared leases installed
	LeaseShares         int64 // existing unexpired leases joined
	LeaseConfirms       int64 // per-lease confirmation checks that passed
	LeaseConfirmFails   int64 // confirmation failures outside the HTM region
	LeaseExpiries       int64 // expired leases observed and taken over/cleared
	LeaseFails          int64 // legacy aggregate: LeaseAborts + LeaseConfirmFails
	RemoteLockConflicts int64 // lock/lease acquisitions lost to a conflicting holder
	LockUpgrades        int64 // shared leases upgraded in place to exclusive locks

	// Speculative (OCC) read-arm events (PolicySpeculative, or adaptive
	// cold-bucket routes).
	SpecReads         int64 // records fetched with a versioned READ, no lock
	SpecValidateFails int64 // commit-time validations that found a version bump or live lock

	// Snapshot (MVCC) read-arm events (PolicyMVCC, or adaptive wide-scan
	// routes over the version chains).
	ChainRetires     int64 // superseded versions retired into entry ring chains
	MVCCReads        int64 // keys resolved against a snapshot stamp (point or scan row)
	MVCCTruncations  int64 // resolutions that fell off the chain (stamp older than ring depth)
	MVCCInconsistent int64 // torn chain images observed (head/tail mismatch)
	MVCCFallbacks    int64 // RO executions that fell back to the confirm-wave arm

	// Adaptive read-arm selection (PolicyAdaptive).
	AdaptiveSpecReads  int64   // reads routed to the speculative arm (bucket cold)
	AdaptiveLeaseReads int64   // reads routed to the lease arm (bucket hot)
	ArmSwitchesToLease int64   // buckets reclassified cold→hot
	ArmSwitchesToSpec  int64   // buckets reclassified hot→cold
	ArmSwitches        int64   // total reclassifications, both directions
	HotKeys            int64   // buckets currently hot (switch-count difference)
	SpecShare          float64 // % of adaptive-routed reads that took the spec arm

	// One-sided RDMA and messaging verbs (Section 7.1).
	RDMAReads   int64
	RDMAWrites  int64
	RDMACASes   int64
	RDMAFAAs    int64
	VerbsMsgs   int64
	RDMABatches int64 // doorbell batches polled by the async verb engine

	// Durability and recovery (Section 4.6 / Figure 7).
	LogRecords      int64
	RecoveryRedos   int64
	RecoveryUnlocks int64

	// Replication and hot failover (FaRM-style commit-backup).
	LogAppends   int64 // one-sided log-append WRs acked by backup redo logs
	BackupBytes  int64 // redo payload bytes shipped to backups
	FenceRejects int64 // appends rejected by a backup's view-epoch fence
	ViewAborts   int64 // transactions aborted by an in-flight view change
	Failovers    int64 // completed hot-failover promotions
	PromoteNanos int64 // unavailability: wall-clock ns until the promoted partition serves
	RedoTailLen  int64 // redo records replayed during promotions

	// Fault injection, failure detection and recovery under load.
	VerbFaults     int64 // verbs that failed (injected fault or crashed node)
	LockRetries    int64 // transient verb faults retried inside transactions
	BackoffNanos   int64 // modeled ns spent in fault-retry backoff
	NodeDownAborts int64 // transactions aborted with ErrNodeDown
	Detections     int64 // crashes confirmed by survivors via lease expiry
	Recoveries     int64 // Recover invocations that replayed at least one log set
	RecoveryNanos  int64 // wall-clock ns spent inside Recover

	// Phase latency summaries (modeled time): the Start phase (remote
	// lock/lease + prefetch), the HTM region (attempts plus fallback body),
	// the Commit phase (remote write-back + unlock), and the whole
	// transaction. Only committed read-write transactions are recorded.
	// ValidateLatency covers the speculative arm's commit-time validation
	// wave (a sub-phase of the HTM region, or of RO confirm).
	// MVCCROLatency times PolicyMVCC read-only executions end to end.
	LockRemoteLatency Latency
	HTMRegionLatency  Latency
	CommitLatency     Latency
	ValidateLatency   Latency
	MVCCROLatency     Latency
	TotalLatency      Latency

	snap obs.Snapshot
}

func newStats(sn obs.Snapshot) Stats {
	c := func(ev obs.Event) int64 { return sn.Counter(ev) }
	s := Stats{
		Commits:   c(obs.EvTxCommit),
		Retries:   c(obs.EvTxRetry),
		Fallbacks: c(obs.EvFallback),
		ROCommits: c(obs.EvROCommit),
		RORetries: c(obs.EvRORetry),

		HTMCommits:     c(obs.EvHTMCommit),
		ConflictAborts: c(obs.EvHTMConflictAbort),
		CapacityAborts: c(obs.EvHTMCapacityAbort),
		LockedAborts:   c(obs.EvHTMLockedAbort),
		LeaseAborts:    c(obs.EvHTMLeaseAbort),
		ExplicitAborts: c(obs.EvHTMExplicitAbort),

		LeaseGrants:         c(obs.EvLeaseGrant),
		LeaseShares:         c(obs.EvLeaseShare),
		LeaseConfirms:       c(obs.EvLeaseConfirm),
		LeaseConfirmFails:   c(obs.EvLeaseConfirmFail),
		LeaseExpiries:       c(obs.EvLeaseExpire),
		RemoteLockConflicts: c(obs.EvRemoteLockConflict),
		LockUpgrades:        c(obs.EvLockUpgrade),

		SpecReads:         c(obs.EvSpecRead),
		SpecValidateFails: c(obs.EvSpecValidateFail),

		ChainRetires:     c(obs.EvChainRetire),
		MVCCReads:        c(obs.EvMVCCRead),
		MVCCTruncations:  c(obs.EvMVCCTrunc),
		MVCCInconsistent: c(obs.EvMVCCInconsist),
		MVCCFallbacks:    c(obs.EvMVCCFallback),

		AdaptiveSpecReads:  c(obs.EvAdaptSpec),
		AdaptiveLeaseReads: c(obs.EvAdaptLease),
		ArmSwitchesToLease: c(obs.EvArmSwitchToLease),
		ArmSwitchesToSpec:  c(obs.EvArmSwitchToSpec),

		RDMAReads:   c(obs.EvRDMARead),
		RDMAWrites:  c(obs.EvRDMAWrite),
		RDMACASes:   c(obs.EvRDMACAS),
		RDMAFAAs:    c(obs.EvRDMAFAA),
		VerbsMsgs:   c(obs.EvVerbsMsg),
		RDMABatches: c(obs.EvRDMABatch),

		LogRecords:      c(obs.EvLogRecord),
		RecoveryRedos:   c(obs.EvRecoveryRedo),
		RecoveryUnlocks: c(obs.EvRecoveryUnlock),

		LogAppends:   c(obs.EvLogAppend),
		BackupBytes:  c(obs.EvBackupBytes),
		FenceRejects: c(obs.EvFenceReject),
		ViewAborts:   c(obs.EvViewAbort),
		Failovers:    c(obs.EvFailover),
		PromoteNanos: c(obs.EvPromoteNanos),
		RedoTailLen:  c(obs.EvRedoTailLen),

		VerbFaults:     c(obs.EvVerbFault),
		LockRetries:    c(obs.EvLockRetry),
		BackoffNanos:   c(obs.EvBackoffNanos),
		NodeDownAborts: c(obs.EvNodeDownAbort),
		Detections:     c(obs.EvDetect),
		Recoveries:     c(obs.EvRecoveryRun),
		RecoveryNanos:  c(obs.EvRecoveryNanos),

		LockRemoteLatency: latencyOf(sn.Phases[obs.PhaseLockRemote]),
		HTMRegionLatency:  latencyOf(sn.Phases[obs.PhaseHTM]),
		CommitLatency:     latencyOf(sn.Phases[obs.PhaseCommit]),
		ValidateLatency:   latencyOf(sn.Phases[obs.PhaseValidate]),
		MVCCROLatency:     latencyOf(sn.Phases[obs.PhaseMVCC]),
		TotalLatency:      latencyOf(sn.Phases[obs.PhaseTotal]),

		snap: sn,
	}
	s.HTMAborts = s.ConflictAborts + s.CapacityAborts + s.LockedAborts +
		s.LeaseAborts + s.ExplicitAborts
	s.LeaseFails = s.LeaseAborts + s.LeaseConfirmFails
	s.ArmSwitches = s.ArmSwitchesToLease + s.ArmSwitchesToSpec
	// Transitions are CAS-serialized per heat slot, so the running
	// difference is exactly the number of currently-hot buckets. (Delta
	// snapshots can legitimately go negative: a cooling interval.)
	s.HotKeys = s.ArmSwitchesToLease - s.ArmSwitchesToSpec
	if n := s.AdaptiveSpecReads + s.AdaptiveLeaseReads; n > 0 {
		s.SpecShare = 100 * float64(s.AdaptiveSpecReads) / float64(n)
	}
	return s
}

// Stats returns an immutable snapshot of all counters.
func (db *DB) Stats() Stats { return newStats(db.C.Obs.Snapshot()) }

// ResetStats zeroes every counter and histogram.
func (db *DB) ResetStats() { db.C.Obs.Reset() }

// Delta returns the counter-by-counter difference s - prev. Latency
// histograms subtract bucket-wise; Max is a high-water mark and keeps s's
// value.
func (s Stats) Delta(prev Stats) Stats { return newStats(s.snap.Delta(prev.snap)) }

// String renders a compact multi-line dump, the sample format shown in the
// README's Observability section.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tx:      commits=%d retries=%d fallbacks=%d ro-commits=%d ro-retries=%d\n",
		s.Commits, s.Retries, s.Fallbacks, s.ROCommits, s.RORetries)
	fmt.Fprintf(&b, "htm:     commits=%d aborts=%d (conflict=%d capacity=%d locked=%d lease=%d explicit=%d)\n",
		s.HTMCommits, s.HTMAborts, s.ConflictAborts, s.CapacityAborts,
		s.LockedAborts, s.LeaseAborts, s.ExplicitAborts)
	fmt.Fprintf(&b, "lease:   grants=%d shares=%d confirms=%d confirm-fails=%d expiries=%d lock-conflicts=%d upgrades=%d\n",
		s.LeaseGrants, s.LeaseShares, s.LeaseConfirms, s.LeaseConfirmFails,
		s.LeaseExpiries, s.RemoteLockConflicts, s.LockUpgrades)
	fmt.Fprintf(&b, "spec:    reads=%d validate-fails=%d\n", s.SpecReads, s.SpecValidateFails)
	fmt.Fprintf(&b, "mvcc:    retires=%d reads=%d truncations=%d inconsistent=%d fallbacks=%d\n",
		s.ChainRetires, s.MVCCReads, s.MVCCTruncations, s.MVCCInconsistent, s.MVCCFallbacks)
	fmt.Fprintf(&b, "adapt:   spec-routes=%d lease-routes=%d spec-share=%.1f%% hot-keys=%d switches=%d (to-lease=%d to-spec=%d)\n",
		s.AdaptiveSpecReads, s.AdaptiveLeaseReads, s.SpecShare, s.HotKeys,
		s.ArmSwitches, s.ArmSwitchesToLease, s.ArmSwitchesToSpec)
	fmt.Fprintf(&b, "rdma:    reads=%d writes=%d cas=%d faa=%d msgs=%d batches=%d\n",
		s.RDMAReads, s.RDMAWrites, s.RDMACASes, s.RDMAFAAs, s.VerbsMsgs, s.RDMABatches)
	fmt.Fprintf(&b, "nvram:   log-records=%d recovery-redos=%d recovery-unlocks=%d\n",
		s.LogRecords, s.RecoveryRedos, s.RecoveryUnlocks)
	fmt.Fprintf(&b, "repl:    log-appends=%d backup-bytes=%d fence-rejects=%d view-aborts=%d failovers=%d promote-time=%v redo-tail=%d\n",
		s.LogAppends, s.BackupBytes, s.FenceRejects, s.ViewAborts,
		s.Failovers, time.Duration(s.PromoteNanos), s.RedoTailLen)
	fmt.Fprintf(&b, "fault:   verb-faults=%d lock-retries=%d node-down-aborts=%d detections=%d recoveries=%d recovery-time=%v\n",
		s.VerbFaults, s.LockRetries, s.NodeDownAborts, s.Detections,
		s.Recoveries, time.Duration(s.RecoveryNanos))
	for _, ph := range []struct {
		name string
		l    Latency
	}{
		{"lock-remote", s.LockRemoteLatency},
		{"htm-region", s.HTMRegionLatency},
		{"commit-remotes", s.CommitLatency},
		{"validate", s.ValidateLatency},
		{"mvcc-ro", s.MVCCROLatency},
		{"total", s.TotalLatency},
	} {
		fmt.Fprintf(&b, "latency: %-14s n=%-8d p50=%-10v p95=%-10v p99=%-10v max=%v\n",
			ph.name, ph.l.Count, ph.l.P50, ph.l.P95, ph.l.P99, ph.l.Max)
	}
	return b.String()
}

// TraceEvent is one traced event; see DB.EnableTracing. Kind discriminates
// transaction records (TraceTx) from adaptive arm-switch records
// (TraceArmSwitch, whose TxID carries the packed heat-bucket key and Hot
// the new classification).
type TraceEvent = obs.TraceEvent

// TraceKind discriminates trace-ring entries.
type TraceKind = obs.TraceKind

// Trace-ring entry kinds, re-exported.
const (
	TraceTx        = obs.TraceTx
	TraceArmSwitch = obs.TraceArmSwitch
	TraceFailover  = obs.TraceFailover
)

// EnableTracing turns on the per-worker transaction trace with a ring of
// perWorker events per worker (newer events overwrite older ones). Tracing
// is off by default and costs one atomic load per transaction while off.
func (db *DB) EnableTracing(perWorker int) { db.C.Obs.EnableTrace(perWorker) }

// DisableTracing turns tracing off and discards undrained events.
func (db *DB) DisableTracing() { db.C.Obs.DisableTrace() }

// DrainTrace returns and clears buffered trace events, grouped by worker
// and oldest-first within each worker.
func (db *DB) DrainTrace() []TraceEvent { return db.C.Obs.DrainTrace() }

// WorkerVirtualTime returns a worker's accumulated modeled execution time,
// the basis for throughput reporting (see DESIGN.md).
func (db *DB) WorkerVirtualTime(node, worker int) time.Duration {
	return db.C.Worker(node, worker).VClock.Now()
}

// RemoteOpCounts reports cluster-wide one-sided RDMA operation totals.
func (db *DB) RemoteOpCounts() (reads, writes, cas int64) {
	t := &db.C.Fabric.Totals
	return t.Reads.Load(), t.Writes.Load(), t.CASes.Load()
}

// LocationCacheStats aggregates location-cache hit/miss/invalidation
// counts across the cluster (Section 5.3).
func (db *DB) LocationCacheStats() (hits, misses, invals int64) {
	return db.RT.CacheStats()
}
