module drtm

go 1.22
