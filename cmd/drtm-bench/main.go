// Command drtm-bench regenerates the tables and figures of the paper's
// evaluation (Sections 5.4 and 7), plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	drtm-bench -list                 # list experiment IDs
//	drtm-bench -exp fig12            # run one experiment
//	drtm-bench -exp all              # run everything
//	drtm-bench -exp table4 -quick    # smoke-scale run
//
// Reported throughput and latency come from the calibrated virtual-time
// cost model (see DESIGN.md): correctness phenomena (conflicts, aborts,
// retries, recovery) happen for real between goroutine workers, while the
// paper's cluster parallelism is accounted, not wall-clocked.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"drtm/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID to run, or 'all'")
		list  = flag.Bool("list", false, "list available experiments")
		quick = flag.Bool("quick", false, "run at smoke-test scale")
		seed  = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opts := bench.Options{Quick: *quick, Seed: *seed}
	run := func(e bench.Experiment) {
		start := time.Now()
		res := e.Run(opts)
		res.Print(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
		return
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	run(e)
}
