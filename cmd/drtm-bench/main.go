// Command drtm-bench regenerates the tables and figures of the paper's
// evaluation (Sections 5.4 and 7), plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	drtm-bench -list                 # list experiment IDs
//	drtm-bench -exp fig12            # run one experiment
//	drtm-bench -exp fig12,batch      # run several
//	drtm-bench -exp all              # run everything
//	drtm-bench -exp table4 -quick    # smoke-scale run
//	drtm-bench -exp batch -json out.json
//
// Reported throughput and latency come from the calibrated virtual-time
// cost model (see DESIGN.md): correctness phenomena (conflicts, aborts,
// retries, recovery) happen for real between goroutine workers, while the
// paper's cluster parallelism is accounted, not wall-clocked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"drtm/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment IDs, or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		quick    = flag.Bool("quick", false, "run at smoke-test scale")
		seed     = flag.Int64("seed", 42, "workload seed")
		jsonPath = flag.String("json", "", "also write results as JSON to this path")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <id>[,<id>...] or -exp all")
		}
		return
	}

	var todo []bench.Experiment
	if *exp == "all" {
		todo = bench.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			e, ok := bench.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(1)
			}
			todo = append(todo, e)
		}
	}

	opts := bench.Options{Quick: *quick, Seed: *seed}
	var results []*bench.Result
	for _, e := range todo {
		start := time.Now()
		res := e.Run(opts)
		res.Print(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		results = append(results, res)
	}

	if *jsonPath != "" {
		out := struct {
			Seed    int64           `json:"seed"`
			Quick   bool            `json:"quick"`
			Results []*bench.Result `json:"results"`
		}{Seed: *seed, Quick: *quick, Results: results}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal results: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
