package drtm_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"drtm"
)

// TestAdaptiveShiftingHotset is the adaptive selector's race/consistency
// stress: concurrent transfer and audit traffic over a Zipf hotset that
// jumps to a different key range mid-run. The selector must chase it —
// heating the new hot buckets (switches to the lease arm) while the
// abandoned ones decay back (switches to the spec arm) — and the total
// money must be conserved throughout, whatever mix of spec validation
// failures, lease conflicts, and whole-transaction retries the shift
// provokes. Run under -race via `make race`.
func TestAdaptiveShiftingHotset(t *testing.T) {
	const (
		nodes    = 2
		workers  = 2
		accounts = 512 // keys 1..512, hot windows [1,64] then [257,320]
		balance  = 1000
		phaseTxn = 300
		tblBank  = 7
	)
	db := drtm.MustOpen(drtm.Options{
		Nodes: nodes, WorkersPerNode: workers,
		ReadPolicy: drtm.PolicyAdaptive,
		// Tight tuning so both the heat-up and the decay fit in one phase.
		Policies: drtm.PolicyOptions{EWMAHalfLife: 16, HotThreshold: 2.0, Hysteresis: 0.5},
	}, func(table int, key uint64) int { return int(key) % nodes })
	defer db.Close()
	db.CreateHashTable(tblBank, 2048, 1)
	for k := uint64(1); k <= accounts; k++ {
		if err := db.Load(tblBank, k, []uint64{balance}); err != nil {
			t.Fatal(err)
		}
	}

	for phase := 0; phase < 2; phase++ {
		hotBase := uint64(phase * 256) // the hotset jumps 256 keys at half-time
		var wg sync.WaitGroup
		for n := 0; n < nodes; n++ {
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(n, w int) {
					defer wg.Done()
					e := db.Executor(n, w)
					rng := rand.New(rand.NewSource(int64(phase*100+n*workers+w) + 1))
					z := rand.NewZipf(rng, 1.3, 1, 63)
					hotKey := func() uint64 { return hotBase + 1 + z.Uint64() }
					anyKey := func() uint64 { return 1 + uint64(rng.Intn(accounts)) }
					for i := 0; i < phaseTxn; i++ {
						var src, dst uint64
						for src, dst = hotKey(), anyKey(); dst == src; dst = anyKey() {
						}
						// Audit keys: one from the hot window (spec reads
						// here conflict with the transfers and heat the
						// bucket), one uniform (touches cooled buckets so
						// their heat decays and they revert to spec).
						audit := [2]uint64{hotKey(), anyKey()}
						err := e.Exec(func(tx *drtm.Tx) error {
							if err := tx.W(tblBank, src); err != nil {
								return err
							}
							if err := tx.W(tblBank, dst); err != nil {
								return err
							}
							for _, k := range audit {
								if k == src || k == dst {
									continue
								}
								if err := tx.R(tblBank, k); err != nil {
									return err
								}
							}
							return tx.Execute(func(lc *drtm.Local) error {
								s, err := lc.Read(tblBank, src)
								if err != nil {
									return err
								}
								d, err := lc.Read(tblBank, dst)
								if err != nil {
									return err
								}
								for _, k := range audit {
									if k == src || k == dst {
										continue
									}
									if _, err := lc.Read(tblBank, k); err != nil {
										return err
									}
								}
								if s[0] == 0 {
									return nil // broke account: transfer nothing
								}
								if err := lc.Write(tblBank, src, []uint64{s[0] - 1}); err != nil {
									return err
								}
								return lc.Write(tblBank, dst, []uint64{d[0] + 1})
							})
						})
						// Retry-budget exhaustion aborts cleanly; anything
						// else is a bug.
						if err != nil && !errors.Is(err, drtm.ErrRetry) {
							t.Error(err)
							return
						}
					}
				}(n, w)
			}
		}
		wg.Wait()
	}

	// Conservation: committed transfers move money, aborted ones must not.
	var total uint64
	for k := uint64(1); k <= accounts; k++ {
		v, ok := db.Get(tblBank, k)
		if !ok {
			t.Fatalf("account %d vanished", k)
		}
		total += v[0]
	}
	if total != accounts*balance {
		t.Fatalf("conservation broken: total = %d, want %d", total, accounts*balance)
	}

	s := db.Stats()
	if s.AdaptiveSpecReads == 0 || s.AdaptiveLeaseReads == 0 {
		t.Fatalf("adaptive routing never exercised both arms: %+v", s)
	}
	if s.ArmSwitchesToLease == 0 {
		t.Fatalf("hotset never heated any bucket to the lease arm: %+v", s)
	}
	if s.ArmSwitchesToSpec == 0 {
		t.Fatalf("abandoned hotset never cooled back to the spec arm: %+v", s)
	}
	if s.HotKeys != s.ArmSwitchesToLease-s.ArmSwitchesToSpec {
		t.Fatalf("HotKeys %d inconsistent with switches %d/%d",
			s.HotKeys, s.ArmSwitchesToLease, s.ArmSwitchesToSpec)
	}
}
