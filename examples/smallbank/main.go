// SmallBank example: the six-transaction banking mix with a configurable
// distributed fraction, plus the balance-conservation check.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"drtm/internal/cluster"
	"drtm/internal/smallbank"
	"drtm/internal/tx"
)

func main() {
	const (
		nodes         = 3
		workers       = 4
		txnsPerWorker = 500
	)
	ccfg := cluster.DefaultConfig(nodes, workers)
	ccfg.LeaseMicros = 5_000
	ccfg.ROLeaseMicros = 10_000
	c := cluster.New(ccfg)
	c.Start()
	defer c.Stop()

	cfg := smallbank.DefaultConfig(nodes)
	cfg.AccountsPerNode = 10_000
	cfg.HotAccounts = 100
	cfg.DistProb = 0.05 // 5% distributed SP/AMG (the Figure 15 knob)
	rt := tx.NewRuntime(c, cfg.Partitioner())

	fmt.Printf("populating %d accounts per node on %d nodes...\n", cfg.AccountsPerNode, nodes)
	w, err := smallbank.Setup(rt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	initial := w.TotalBalance()

	fmt.Printf("running the mix: %d workers x %d transactions, 5%% distributed...\n",
		nodes*workers, txnsPerWorker)
	var mu sync.Mutex
	var committed, net int64
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(n, k int) {
				defer wg.Done()
				cl := w.NewClient(rt.Executor(n, k), int64(n*10+k+1))
				for i := 0; i < txnsPerWorker; i++ {
					if _, err := cl.RunOne(); err != nil {
						log.Fatalf("txn failed: %v", err)
					}
				}
				mu.Lock()
				committed += int64(txnsPerWorker)
				net += cl.NetDeposits
				mu.Unlock()
			}(n, k)
		}
	}
	wg.Wait()

	var maxV time.Duration
	for _, wk := range c.Workers() {
		if t := wk.VClock.Now(); t > maxV {
			maxV = t
		}
	}
	fmt.Printf("committed %d transactions; modeled throughput %.0f txns/s\n",
		committed, float64(committed)/maxV.Seconds())

	fmt.Print("verifying balance conservation... ")
	final := int64(w.TotalBalance())
	want := int64(initial) + net
	if final != want {
		log.Fatalf("FAILED: total=%d want=%d", final, want)
	}
	fmt.Printf("ok (total moved by tracked net deposits: %+d)\n", net)
}
