// TATP example: the telecom point-lookup/delete mix over ordered tables
// with a declared sub_nbr secondary index, plus transactional range scans
// of a subscriber's facility rows, finished by the live RO invariant check
// and the quiesced index/base audit.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"drtm/internal/cluster"
	"drtm/internal/tatp"
	"drtm/internal/tx"
)

func main() {
	const (
		nodes         = 3
		workers       = 4
		txnsPerWorker = 400
	)
	ccfg := cluster.DefaultConfig(nodes, workers)
	c := cluster.New(ccfg)
	c.Start()
	defer c.Stop()

	cfg := tatp.DefaultConfig(nodes)
	rt := tx.NewRuntime(c, cfg.Partitioner())

	fmt.Printf("populating %d subscribers (base + facility rows + sub_nbr index)...\n",
		cfg.Subscribers)
	w, err := tatp.Setup(rt, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running the mix: %d workers x %d transactions...\n",
		nodes*workers, txnsPerWorker)
	var mu sync.Mutex
	totals := map[string]int64{}
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(n, k int) {
				defer wg.Done()
				cl := w.NewClient(rt.Executor(n, k), int64(n*10+k+1))
				for i := 0; i < txnsPerWorker; i++ {
					if err := cl.RunOne(); err != nil && !errors.Is(err, tx.ErrRetry) {
						log.Fatalf("txn failed: %v", err)
					}
					// A live snapshot check rides along every 50 txns: the
					// facility scan and the subscriber read confirm together.
					if i%50 == 0 {
						if verr := cl.CheckSubscriberRO(uint64(i%cfg.Subscribers) + 1); verr != nil {
							log.Fatalf("invariant violated: %v", verr)
						}
					}
				}
				mu.Lock()
				for name, v := range cl.Counts {
					totals[name] += v
				}
				mu.Unlock()
			}(n, k)
		}
	}
	wg.Wait()

	var committed int64
	for _, v := range totals {
		committed += v
	}
	var maxV time.Duration
	for _, wk := range c.Workers() {
		if t := wk.VClock.Now(); t > maxV {
			maxV = t
		}
	}
	fmt.Printf("committed %d transactions; modeled throughput %.0f txns/s\n",
		committed, float64(committed)/maxV.Seconds())
	for name, v := range totals {
		fmt.Printf("  %-20s %6d\n", name, v)
	}

	fmt.Print("auditing facility exactness + index/base divergence... ")
	if err := w.Audit(); err != nil {
		log.Fatalf("FAILED: %v", err)
	}
	fmt.Println("ok")
}
