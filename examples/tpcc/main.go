// TPC-C example: runs the standard five-transaction mix on a small DrTM
// cluster, reports modeled throughput, and verifies the TPC-C consistency
// conditions afterwards.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"drtm/internal/cluster"
	"drtm/internal/tpcc"
	"drtm/internal/tx"
)

func main() {
	const (
		nodes         = 2
		workers       = 4
		txnsPerWorker = 400
	)
	ccfg := cluster.DefaultConfig(nodes, workers)
	ccfg.LeaseMicros = 5_000
	ccfg.ROLeaseMicros = 10_000
	c := cluster.New(ccfg)
	c.Start()
	defer c.Stop()

	tcfg := tpcc.DefaultConfig(nodes, workers) // one warehouse per worker
	tcfg.CustomersPerDist = 100
	tcfg.ExtraOrdersPerDistrict = txnsPerWorker*workers/tcfg.Districts + 64
	rt := tx.NewRuntime(c, tcfg.Partitioner())

	fmt.Printf("populating %d warehouses (%d districts, %d customers/district, %d items)...\n",
		tcfg.Warehouses(), tcfg.Districts, tcfg.CustomersPerDist, tcfg.Items)
	w, err := tpcc.Setup(rt, tcfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running the standard mix: %d workers x %d transactions...\n",
		nodes*workers, txnsPerWorker)
	var mu sync.Mutex
	var newOrder, total int64
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(n, k int) {
				defer wg.Done()
				home := n*workers + k + 1
				cl := w.NewClient(rt.Executor(n, k), home, int64(n*100+k))
				for i := 0; i < txnsPerWorker; i++ {
					if _, err := cl.RunOne(); err != nil {
						log.Fatalf("txn failed: %v", err)
					}
				}
				mu.Lock()
				newOrder += cl.NewOrderCount()
				total += cl.TotalCount()
				mu.Unlock()
			}(n, k)
		}
	}
	wg.Wait()

	var maxV time.Duration
	for _, wk := range c.Workers() {
		if t := wk.VClock.Now(); t > maxV {
			maxV = t
		}
	}
	fmt.Printf("committed: %d new-order, %d total\n", newOrder, total)
	fmt.Printf("modeled throughput: %.0f new-order/s, %.0f standard-mix/s\n",
		float64(newOrder)/maxV.Seconds(), float64(total)/maxV.Seconds())

	st := &rt.Stats
	fmt.Printf("htm aborts=%d, whole-txn retries=%d, fallbacks=%d, RO commits=%d\n",
		st.HTMAborts.Load(), st.Retries.Load(), st.Fallbacks.Load(), st.ROCommits.Load())

	fmt.Print("checking TPC-C consistency conditions... ")
	if err := w.CheckConsistency(); err != nil {
		log.Fatalf("FAILED: %v", err)
	}
	fmt.Println("ok")
}
