// kvcache: demonstrates the DrTM-KV memory store on its own — one-sided
// remote GETs against the cluster-chaining hash table, with and without the
// location-based cache (Section 5.3), including incarnation checking after
// a delete invalidates a cached location.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"drtm/internal/htm"
	"drtm/internal/kvs"
	"drtm/internal/rdma"
	"drtm/internal/vtime"
)

func main() {
	const keys = 50_000

	table := kvs.New(kvs.Config{
		Node: 0, RegionID: 0,
		MainBuckets:     keys / 4,
		IndirectBuckets: keys / 8,
		Capacity:        keys + 64,
		ValueWords:      8, // 64-byte values
	}, htm.NewEngine(htm.Config{}))

	fabric := rdma.NewFabric(2, vtime.DefaultModel(), rdma.AtomicHCA)
	fabric.Register(0, 0, table.Arena())

	fmt.Printf("populating %d keys...\n", keys)
	val := make([]uint64, 8)
	for k := uint64(1); k <= keys; k++ {
		val[0] = k * 7
		if err := table.Insert(k, val); err != nil {
			log.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(1))
	lookup := func(cache kvs.Cache, n int) (reads float64, cost float64) {
		var clk vtime.Clock
		qp := fabric.NewQP(1, &clk)
		for i := 0; i < n; i++ {
			k := uint64(rng.Intn(keys)) + 1
			e, ok := table.GetRemote(qp, cache, k)
			if !ok || e.Value[0] != k*7 {
				log.Fatalf("GET %d returned %v,%v", k, e, ok)
			}
		}
		return float64(qp.Stats.Reads.Load()) / float64(n),
			float64(clk.Now().Microseconds()) / float64(n)
	}

	const n = 20_000
	r0, c0 := lookup(nil, n)
	fmt.Printf("no cache:     %.3f RDMA READs/GET, %.2f us/GET modeled\n", r0, c0)

	cache := kvs.NewLocationCache(4 << 20)
	r1, c1 := lookup(cache, n) // cold
	fmt.Printf("cold cache:   %.3f RDMA READs/GET, %.2f us/GET modeled\n", r1, c1)
	r2, c2 := lookup(cache, n) // warm
	fmt.Printf("warm cache:   %.3f RDMA READs/GET, %.2f us/GET modeled\n", r2, c2)
	hits, misses, _ := cache.Stats()
	fmt.Printf("cache hits=%d misses=%d\n", hits, misses)

	// Incarnation checking: delete + reuse a key's entry, then read through
	// the stale cached location.
	fmt.Print("incarnation checking after delete/reinsert... ")
	qp := fabric.NewQP(1, nil)
	if _, ok := table.GetRemote(qp, cache, 1); !ok {
		log.Fatal("prefetch failed")
	}
	table.Delete(1)
	val[0] = 999
	if err := table.Insert(keys+1, val); err != nil { // reuses entry memory
		log.Fatal(err)
	}
	if _, ok := table.GetRemote(qp, cache, 1); ok {
		log.Fatal("FAILED: stale read of deleted key succeeded")
	}
	if e, ok := table.GetRemote(qp, cache, keys+1); !ok || e.Value[0] != 999 {
		log.Fatal("FAILED: new key unreadable")
	}
	fmt.Println("ok (stale location detected, cache refreshed)")
}
