// Quickstart: a two-node DrTM deployment running local and distributed
// bank transfers, demonstrating the Start/LocalTX/Commit protocol, the
// read-only transaction scheme, and the runtime statistics.
package main

import (
	"fmt"
	"log"

	"drtm"
)

const accounts = 1 // table ID

func main() {
	// Two logical machines, two worker threads each; accounts are
	// partitioned by key parity.
	db := drtm.MustOpen(drtm.Options{Nodes: 2, WorkersPerNode: 2},
		func(table int, key uint64) int { return int(key) % 2 })
	defer db.Close()

	db.CreateHashTable(accounts, 1024, 1)
	for k := uint64(1); k <= 10; k++ {
		if err := db.Load(accounts, k, []uint64{100}); err != nil {
			log.Fatal(err)
		}
	}

	e := db.Executor(0, 0)

	// A distributed transfer: account 1 lives on node 1 (remote — locked
	// and prefetched with one-sided RDMA in the Start phase), account 2 on
	// node 0 (local — accessed inside the HTM region).
	err := e.Exec(func(t *drtm.Tx) error {
		if err := t.W(accounts, 1); err != nil {
			return err
		}
		if err := t.W(accounts, 2); err != nil {
			return err
		}
		return t.Execute(func(lc *drtm.Local) error {
			from, _ := lc.Read(accounts, 1)
			to, _ := lc.Read(accounts, 2)
			if from[0] < 30 {
				return drtm.ErrUserAbort // insufficient funds: roll back
			}
			if err := lc.Write(accounts, 1, []uint64{from[0] - 30}); err != nil {
				return err
			}
			return lc.Write(accounts, 2, []uint64{to[0] + 30})
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	v1, _ := db.Get(accounts, 1)
	v2, _ := db.Get(accounts, 2)
	fmt.Printf("after transfer: account1=%d account2=%d\n", v1[0], v2[0])

	// A read-only audit over all accounts via the lease-based scheme
	// (Section 4.5): one consistent snapshot, no HTM region.
	var total uint64
	err = e.ExecRO(func(ro *drtm.RO) error {
		total = 0
		for k := uint64(1); k <= 10; k++ {
			v, err := ro.Read(accounts, k)
			if err != nil {
				return err
			}
			total += v[0]
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit total: %d (expected 1000)\n", total)

	// The full observability snapshot: protocol counters by cause plus
	// phase latency summaries (see the README's Observability section).
	fmt.Print(db.Stats())
	fmt.Printf("worker 0/0 modeled execution time: %v\n", db.WorkerVirtualTime(0, 0))
}
