// Recovery example: durable transactions, a fail-stop crash mid-workload,
// and the Figure 7 recovery procedure — committed transactions are redone
// from the write-ahead log, uncommitted locks are released via the
// lock-ahead log, and the balance invariant survives.
package main

import (
	"fmt"
	"log"
	"sync"

	"drtm"
)

const accounts = 1

func main() {
	const nodes, workers, keys = 3, 2, 60
	db := drtm.MustOpen(drtm.Options{Nodes: nodes, WorkersPerNode: workers, Durability: true},
		func(table int, key uint64) int { return int(key) % nodes })
	defer db.Close()

	db.CreateHashTable(accounts, 1024, 1)
	for k := uint64(1); k <= keys; k++ {
		if err := db.Load(accounts, k, []uint64{1000}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("running durable transfers on all nodes...")
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(n, w int) {
				defer wg.Done()
				e := db.Executor(n, w)
				for i := 0; i < 80; i++ {
					from := uint64((n*17+w*5+i)%keys) + 1
					to := uint64((n*29+w*3+i*7)%keys) + 1
					if from == to {
						continue
					}
					err := e.Exec(func(t *drtm.Tx) error {
						if err := t.W(accounts, from); err != nil {
							return err
						}
						if err := t.W(accounts, to); err != nil {
							return err
						}
						return t.Execute(func(lc *drtm.Local) error {
							f, _ := lc.Read(accounts, from)
							g, _ := lc.Read(accounts, to)
							if f[0] < 5 {
								return nil
							}
							if err := lc.Write(accounts, from, []uint64{f[0] - 5}); err != nil {
								return err
							}
							return lc.Write(accounts, to, []uint64{g[0] + 5})
						})
					})
					if err != nil && err != drtm.ErrNodeDown {
						log.Fatalf("transfer: %v", err)
					}
				}
			}(n, w)
		}
	}
	wg.Wait()

	fmt.Println("crashing node 1 (fail-stop; NVRAM logs survive)...")
	db.Crash(1)

	rep := db.Recover(1)
	fmt.Printf("recovery: %d txns redone (%d records), %d stale skips, %d locks released, %d pending chopped pieces\n",
		rep.RedoneTxns, rep.RedoneRecords, rep.SkippedRecords, rep.Unlocked, len(rep.PendingPieces))
	db.Revive(1)

	st := db.Stats()
	fmt.Printf("counters: log-records=%d recovery-redos=%d recovery-unlocks=%d\n",
		st.LogRecords, st.RecoveryRedos, st.RecoveryUnlocks)

	fmt.Print("verifying conservation after recovery... ")
	var total uint64
	for k := uint64(1); k <= keys; k++ {
		v, ok := db.Get(accounts, k)
		if !ok {
			log.Fatalf("key %d lost", k)
		}
		total += v[0]
	}
	if total != keys*1000 {
		log.Fatalf("FAILED: total=%d want=%d", total, keys*1000)
	}
	fmt.Printf("ok (total=%d)\n", total)
}
