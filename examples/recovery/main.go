// Recovery example: durable transactions, a fail-stop crash under live
// traffic, and the full Section 4.6 failure path — no oracle anywhere.
// Survivors notice the crashed node's membership lease has expired,
// confirm the death by probing, elect a recovery coordinator with RDMA
// CAS, replay the NVRAM logs (committed transactions are redone from the
// write-ahead log, uncommitted locks released via the lock-ahead log), and
// revive the node — while the other nodes keep committing. The balance
// invariant survives it all.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"drtm"
)

const accounts = 1

func main() {
	const nodes, workers, keys = 3, 2, 60
	db := drtm.MustOpen(drtm.Options{
		Nodes: nodes, WorkersPerNode: workers,
		Durability:        true,
		FailureDetection:  true, // lease-based membership + auto recovery
		HeartbeatInterval: time.Millisecond,
		FailureTimeout:    12 * time.Millisecond,
		ElectionStagger:   2 * time.Millisecond,
	}, func(table int, key uint64) int { return int(key) % nodes })
	defer db.Close()

	db.CreateHashTable(accounts, 1024, 1)
	for k := uint64(1); k <= keys; k++ {
		if err := db.Load(accounts, k, []uint64{1000}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("running durable transfers on all nodes...")
	var (
		stop sync.WaitGroup
		done atomic.Bool
	)
	for n := 0; n < nodes; n++ {
		for w := 0; w < workers; w++ {
			stop.Add(1)
			go func(n, w int) {
				defer stop.Done()
				e := db.Executor(n, w)
				for i := 0; !done.Load(); i++ {
					if !db.C.Node(n).Alive() {
						// Fail-stop: a crashed machine runs nothing until the
						// recovery coordinator revives it.
						time.Sleep(200 * time.Microsecond)
						continue
					}
					from := uint64((n*17+w*5+i)%keys) + 1
					to := uint64((n*29+w*3+i*7)%keys) + 1
					if from == to {
						continue
					}
					err := e.Exec(func(t *drtm.Tx) error {
						if err := t.W(accounts, from); err != nil {
							return err
						}
						if err := t.W(accounts, to); err != nil {
							return err
						}
						return t.Execute(func(lc *drtm.Local) error {
							f, _ := lc.Read(accounts, from)
							g, _ := lc.Read(accounts, to)
							if f[0] < 5 {
								return nil
							}
							if err := lc.Write(accounts, from, []uint64{f[0] - 5}); err != nil {
								return err
							}
							return lc.Write(accounts, to, []uint64{g[0] + 5})
						})
					})
					// ErrNodeDown is the expected abort while a peer is dead.
					if err != nil && !errors.Is(err, drtm.ErrNodeDown) {
						log.Fatalf("transfer: %v", err)
					}
				}
			}(n, w)
		}
	}

	time.Sleep(20 * time.Millisecond)
	fmt.Println("crashing node 1 (fail-stop; NVRAM logs survive)...")
	db.Crash(1)

	fmt.Print("waiting for survivors to detect, recover and revive it... ")
	deadline := time.Now().Add(10 * time.Second)
	for !db.C.Node(1).Alive() {
		if time.Now().After(deadline) {
			log.Fatal("node 1 was never revived")
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("back online")

	time.Sleep(20 * time.Millisecond) // post-revival traffic on all nodes
	done.Store(true)
	stop.Wait()

	st := db.Stats()
	fmt.Printf("counters: detections=%d recoveries=%d recovery-time=%v\n",
		st.Detections, st.Recoveries, time.Duration(st.RecoveryNanos))
	fmt.Printf("          verb-faults=%d node-down-aborts=%d log-records=%d recovery-redos=%d recovery-unlocks=%d\n",
		st.VerbFaults, st.NodeDownAborts, st.LogRecords, st.RecoveryRedos, st.RecoveryUnlocks)

	fmt.Print("verifying conservation after recovery... ")
	var total uint64
	for k := uint64(1); k <= keys; k++ {
		v, ok := db.Get(accounts, k)
		if !ok {
			log.Fatalf("key %d lost", k)
		}
		total += v[0]
	}
	if total != keys*1000 {
		log.Fatalf("FAILED: total=%d want=%d", total, keys*1000)
	}
	fmt.Printf("ok (total=%d)\n", total)
}
