# Tier-1 gate: everything CI (and the ROADMAP) requires to stay green.
.PHONY: check build vet test race bench chaos

check: build vet race chaos

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Crash-consistency gate: SmallBank under repeated crashes with lease-based
# detection and online recovery; conservation must hold.
chaos:
	go run ./cmd/drtm-bench -exp chaos -quick
	go test -race -run TestChaosSmallBankConservation .

# Full-scale experiment sweep (slow); see cmd/drtm-bench -h for single runs.
bench:
	go run ./cmd/drtm-bench -exp all
