# Tier-1 gate: everything CI (and the ROADMAP) requires to stay green.
.PHONY: check build vet test race bench

check: build vet race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Full-scale experiment sweep (slow); see cmd/drtm-bench -h for single runs.
bench:
	go run ./cmd/drtm-bench -exp all
