# Tier-1 gate: everything CI (and the ROADMAP) requires to stay green.
.PHONY: check build fmt vet test race bench bench-baseline batch chaos occ adaptive failover scan mvcc

check: build fmt vet race batch occ adaptive chaos failover scan mvcc

build:
	go build ./...

# Formatting gate: gofmt must have nothing to rewrite.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Crash-consistency gate: SmallBank under repeated crashes with lease-based
# detection and online recovery; conservation must hold.
chaos:
	go run ./cmd/drtm-bench -exp chaos -quick
	go test -race -run TestChaosSmallBankConservation .

# Doorbell-batching gate: the async verb engine must keep its win over the
# serial window=1 control arm (see internal/bench/batchexp.go).
batch:
	go run ./cmd/drtm-bench -exp batch -quick

# Speculative-read gate: the one-RTT OCC arm must keep its low-contention
# win over lease CAS and show the write-ratio crossover (occexp_test.go).
occ:
	go run ./cmd/drtm-bench -exp occ -quick
	go test -run TestOCCAcceptance ./internal/bench/

# Adaptive-selector gate: the per-key arm selector must track the best
# static policy across the sweep and beat both statics under skewed
# write-hot load (adaptexp_test.go).
adaptive:
	go run ./cmd/drtm-bench -exp adaptive -quick
	go test -run TestAdaptiveAcceptance ./internal/bench/

# Replication gate: hot-standby promotion must lose zero committed
# transactions and repair the partition in < 0.2x of the full NVRAM-replay
# baseline (failoverexp_test.go), with conservation re-checked under -race.
failover:
	go run ./cmd/drtm-bench -exp failover -quick
	go test -run TestFailoverAcceptance ./internal/bench/
	go test -race -run TestFailoverSmallBankConservation .

# Range-scan gate: the RO-scheme scan must keep its >=2x amortization win
# over per-key lease reads (scanexp_test.go), and the workload invariant
# suites must hold under -race with faults and mid-run failover.
scan:
	go run ./cmd/drtm-bench -exp scan -quick
	go test -run TestScanAcceptance ./internal/bench/
	go test -race ./internal/tatp/ ./internal/socialgraph/

# Snapshot-read gate: the MVCC arm must keep its >=1.5x win over the
# confirm-wave scan at fanout >= 32 under writes, the adaptive footprint
# router must stay within 5% of the best static arm in every sweep cell
# (mvccexp_test.go), and the RO hot path must stay inside its allocation
# budget (alloc_guard_test.go).
mvcc:
	go run ./cmd/drtm-bench -exp mvcc -quick
	go test -run TestMVCCAcceptance ./internal/bench/
	go test -run TestExecAllocSteadyState ./internal/tx/

# Full-scale experiment sweep (slow); see cmd/drtm-bench -h for single runs.
bench:
	go run ./cmd/drtm-bench -exp all

# Regenerate the committed baseline tables at full scale, fixed seed.
bench-baseline:
	go run ./cmd/drtm-bench -exp batch,occ,adaptive,failover,scan,mvcc -seed 42 -json BENCH_baseline.json
