# Tier-1 gate: everything CI (and the ROADMAP) requires to stay green.
.PHONY: check build vet test race bench bench-baseline batch chaos

check: build vet race batch chaos

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Crash-consistency gate: SmallBank under repeated crashes with lease-based
# detection and online recovery; conservation must hold.
chaos:
	go run ./cmd/drtm-bench -exp chaos -quick
	go test -race -run TestChaosSmallBankConservation .

# Doorbell-batching gate: the async verb engine must keep its win over the
# serial window=1 control arm (see internal/bench/batchexp.go).
batch:
	go run ./cmd/drtm-bench -exp batch -quick

# Full-scale experiment sweep (slow); see cmd/drtm-bench -h for single runs.
bench:
	go run ./cmd/drtm-bench -exp all

# Regenerate the committed batching baseline at full scale, fixed seed.
bench-baseline:
	go run ./cmd/drtm-bench -exp batch -seed 42 -json BENCH_baseline.json
